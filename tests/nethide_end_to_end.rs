//! Cross-crate integration: the §4.3 case study — traceroute over netsim
//! against honest routers, NetHide-obfuscated routers, and a lying
//! operator; plus the obfuscation trade-off sweep.

use dui::nethide::metrics::{max_flow_density, path_accuracy};
use dui::nethide::obfuscate::{obfuscate, ObfuscationConfig, VirtualTopology};
use dui::nethide::rewriter::VirtualTopologyRewriter;
use dui::nethide::traceroute::{physical_path_addrs, TracerouteProber};
use dui::netsim::node::{IcmpRewriter, RouterLogic, SinkHost};
use dui::netsim::packet::Addr;
use dui::netsim::prelude::Simulator;
use dui::netsim::time::SimTime;
use dui::netsim::topology::{NodeKind, Routing, Topology};
use dui::scenario::topologies;
use std::sync::Arc;

fn traceroute_under(
    topo: &Topology,
    src: dui::netsim::topology::NodeId,
    dst_addr: Addr,
    vt: Option<Arc<VirtualTopology>>,
) -> Vec<Option<Addr>> {
    let mut sim = Simulator::new(topo.clone(), 1);
    for n in topo.nodes_of_kind(NodeKind::Router) {
        let mut logic = RouterLogic::new();
        if let Some(vt) = &vt {
            logic = logic.with_icmp_rewriter(Box::new(VirtualTopologyRewriter::new(
                vt.clone(),
                topo.node(n).addr,
            )) as Box<dyn IcmpRewriter>);
        }
        sim.set_logic(n, Box::new(logic));
    }
    for n in topo.nodes_of_kind(NodeKind::Host) {
        if n != src {
            sim.set_logic(n, Box::new(SinkHost::new()));
        }
    }
    sim.set_logic(src, Box::new(TracerouteProber::new(dst_addr, 16)));
    sim.run_until(SimTime::from_secs(30));
    let p: &mut TracerouteProber = sim.logic_mut(src);
    p.result.hops.clone()
}

#[test]
fn obfuscated_traceroute_matches_solver_output_exactly() {
    let (topo, flows, core) = topologies::bowtie(4);
    let routing = Routing::shortest_paths(&topo);
    let c1 = topo.node(core.0).addr;
    let c2 = topo.node(core.1).addr;
    let (vt, report) = obfuscate(
        &topo,
        &routing,
        &flows,
        &ObfuscationConfig {
            max_density: 2,
            ..Default::default()
        },
        &[(c1, c2)],
    ).unwrap();
    assert!(report.within_budget);
    let vt = Arc::new(vt);
    for &(src, dst) in &flows {
        let src_addr = topo.node(src).addr;
        let dst_addr = topo.node(dst).addr;
        let expected = vt.path(src_addr, dst_addr).unwrap().to_vec();
        let hops = traceroute_under(&topo, src, dst_addr, Some(vt.clone()));
        // The final hop is answered by the destination itself (truthful);
        // all prior hops must follow the virtual path.
        let observed: Vec<Addr> = hops.iter().map(|h| h.expect("answered")).collect();
        assert_eq!(
            &observed[..observed.len() - 1],
            &expected[..expected.len() - 1],
            "traceroute must see the virtual path for {src_addr}->{dst_addr}"
        );
        assert_eq!(*observed.last().unwrap(), dst_addr);
    }
}

#[test]
fn security_budget_trades_against_accuracy() {
    let (topo, hosts) = topologies::chorded_ring(8, 3);
    let routing = Routing::shortest_paths(&topo);
    // All-pairs flows between distinct hosts (ordered pairs i<j).
    let mut flows = Vec::new();
    for i in 0..hosts.len() {
        for j in (i + 1)..hosts.len() {
            flows.push((hosts[i], hosts[j]));
        }
    }
    let mut last_accuracy = 1.1;
    let mut accuracies = Vec::new();
    for budget in [usize::MAX, 8, 5, 3] {
        let (_vt, report) = obfuscate(
            &topo,
            &routing,
            &flows,
            &ObfuscationConfig {
                max_density: budget,
                max_extra_hops: 3,
                ..Default::default()
            },
            &[], // protect everything
        ).unwrap();
        assert!(
            report.accuracy <= last_accuracy + 1e-9,
            "tighter budgets cannot increase accuracy"
        );
        last_accuracy = report.accuracy;
        accuracies.push((budget, report.accuracy, report.achieved_max_density));
    }
    // The tightest budget must have forced real lying.
    let (_, tight_acc, _) = accuracies.last().unwrap();
    assert!(*tight_acc < 1.0, "budget 3 should require detours");
}

#[test]
fn honest_traceroute_reports_physical_truth_on_ring() {
    let (topo, hosts) = topologies::ring(6);
    let routing = Routing::shortest_paths(&topo);
    let (src, dst) = (hosts[0], hosts[3]);
    let dst_addr = topo.node(dst).addr;
    let expected = physical_path_addrs(&topo, &routing, src, dst).unwrap();
    let hops = traceroute_under(&topo, src, dst_addr, None);
    let observed: Vec<Addr> = hops.iter().map(|h| h.unwrap()).collect();
    assert_eq!(observed, expected);
}

#[test]
fn fiction_can_hide_a_hot_link_entirely() {
    // The malicious-operator reading of §4.3: the virtual topology can
    // erase the core link from every observed path.
    let (topo, flows, core) = topologies::bowtie(4);
    let routing = Routing::shortest_paths(&topo);
    let c1 = topo.node(core.0).addr;
    let c2 = topo.node(core.1).addr;
    let m_addr = topo.node(topo.node_by_name("m").unwrap()).addr;
    // Build a fiction: every flow claims to go via m (the detour), never
    // via the direct c1-c2 edge.
    let mut vt = VirtualTopology::default();
    let mut shown_paths = Vec::new();
    for &(s, d) in &flows {
        let phys = physical_path_addrs(&topo, &routing, s, d).unwrap();
        let fake: Vec<Addr> = phys
            .iter()
            .flat_map(|&h| if h == c2 { vec![m_addr, c2] } else { vec![h] })
            .collect();
        shown_paths.push(fake.clone());
        vt.set_path(topo.node(s).addr, topo.node(d).addr, fake);
    }
    // No shown path contains the c1-c2 edge.
    let density = max_flow_density(&shown_paths);
    let has_core = shown_paths.iter().any(|p| {
        p.windows(2)
            .any(|w| (w[0] == c1 && w[1] == c2) || (w[0] == c2 && w[1] == c1))
    });
    assert!(!has_core, "core link hidden from every observed path");
    assert!(density > 0);
    // And accuracy vs physical stays decent (one inserted hop).
    for (&(s, d), fake) in flows.iter().zip(&shown_paths) {
        let phys = physical_path_addrs(&topo, &routing, s, d).unwrap();
        assert!(path_accuracy(&phys, fake) >= 0.5);
    }
}
