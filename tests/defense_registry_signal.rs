//! Pins the `defenses`-ablation numbers across the telemetry refactor and
//! exercises the registry-backed supervisor signal (ISSUE 2 acceptance):
//! the RTO-guard ablation must produce exactly the same reroute/veto/
//! occupancy numbers as before `Counters` became a registry view, and the
//! same numbers must be readable from a metrics snapshot.

use dui_core::netsim::time::{SimDuration, SimTime};
use dui_core::scenario::{BlinkScenario, BlinkScenarioConfig};

fn run(guarded: bool) -> BlinkScenario {
    let cfg = BlinkScenarioConfig {
        legit_flows: 120,
        malicious_flows: 48,
        trigger_at: Some(SimTime::from_secs(30)),
        guarded,
        horizon: SimDuration::from_secs(45),
        seed: 7,
        ..Default::default()
    };
    let mut sc = BlinkScenario::build(&cfg);
    sc.sim.run_until(SimTime::from_secs(40));
    sc
}

/// Ablation numbers harvested before the telemetry refactor: the attacked
/// run reroutes twice with no vetoes, the guarded run vetoes both spurious
/// reroutes; the selector sees 33 malicious cells either way.
#[test]
fn ablation_numbers_unchanged_by_refactor() {
    let mut attacked = run(false);
    assert_eq!(attacked.reroutes().unwrap(), 2, "attacked reroutes");
    assert_eq!(attacked.vetoed(), 0, "attacked vetoes");
    assert_eq!(attacked.malicious_cells().unwrap(), 33, "attacked malicious cells");

    let mut defended = run(true);
    assert_eq!(defended.reroutes().unwrap(), 0, "defended reroutes");
    assert_eq!(defended.vetoed(), 2, "defended vetoes");
    assert_eq!(defended.malicious_cells().unwrap(), 33, "defended malicious cells");
}

/// The same signals must be available through the metrics registry — this
/// is what the `defenses` experiment stage and the supervisor consume.
#[test]
fn registry_snapshot_agrees_with_direct_api() {
    for guarded in [false, true] {
        let mut sc = run(guarded);
        let direct = (
            sc.reroutes().unwrap() as u64,
            sc.vetoed(),
            sc.malicious_cells().unwrap() as u64,
        );
        let snap = sc.metrics();
        assert_eq!(snap.counter("blink.reroutes"), direct.0, "guarded={guarded}");
        assert_eq!(snap.counter("blink.vetoed"), direct.1, "guarded={guarded}");
        assert_eq!(
            snap.gauge_mean("blink.cells.malicious"),
            Some(direct.2 as f64),
            "guarded={guarded}"
        );
        // The engine's own counters surface in the same snapshot.
        assert!(snap.counter("netsim.delivered") > 0, "guarded={guarded}");
    }
}

/// A supervisor assessing risk purely from registry snapshots (Fig. 3
/// point III/IV) sees the attacked run as risky: malicious flows hold
/// 33/64 cells, beyond half the selector's capacity.
#[test]
fn snapshot_supervisor_flags_malicious_occupancy() {
    use dui_defense::supervisor::{SnapshotSupervisor, Supervisor};

    let mut sup = SnapshotSupervisor::occupancy("blink.cells.malicious", 64.0);
    let mut sc = run(false);
    let snap = sc.metrics();
    let risk = sup.assess(&snap);
    assert!(
        risk.0 > 0.5,
        "33/64 malicious occupancy must read as high risk, got {}",
        risk.0
    );
    // An idle network reads as no risk.
    let empty = dui_core::telemetry::Snapshot::default();
    assert_eq!(sup.assess(&empty).0, 0.0);
}
