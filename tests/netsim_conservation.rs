//! Chaos test: random topologies + random traffic + random impairments,
//! asserting the simulator's packet-conservation law — every packet
//! offered to a link direction is delivered, dropped for a counted
//! reason, or still sitting in that link when time stops. (Runs under
//! the in-tree `propcheck` engine.)

use dui::netsim::link::LinkDirStats;
use dui::netsim::prelude::*;
use dui::stats::Rng;
use dui_stats::{prop_assert, prop_assert_eq, prop_check};

fn conservation_holds(stats: &LinkDirStats) -> bool {
    // in-flight/queued remainder is implied: offered >= the accounted sum,
    // and the gap is bounded by the queue capacity + 1.
    let accounted =
        stats.delivered + stats.dropped_queue + stats.dropped_tap + stats.dropped_fault;
    stats.offered >= accounted
}

prop_check! {
    cases = 24;
    fn random_network_conserves_packets(g) {
        let seed = g.any_u64();
        let n_routers = g.usize(2..6);
        let n_pkts = g.usize(1..300);
        let drop_pct = g.u8(0..40);
        // Ring of routers, two hosts attached at random points.
        let mut rng = Rng::new(seed);
        let mut b = TopologyBuilder::new();
        let routers: Vec<NodeId> = (0..n_routers).map(|i| b.router(&format!("r{i}"))).collect();
        for i in 0..n_routers {
            b.link(
                routers[i],
                routers[(i + 1) % n_routers],
                Bandwidth::mbps(1 + rng.below(100)),
                SimDuration::from_micros(100 + rng.below(5000)),
                (1 + rng.below(32)) as usize,
            );
        }
        let h1 = b.host("h1", Addr::new(10, 0, 0, 1));
        let h2 = b.host("h2", Addr::new(10, 0, 0, 2));
        b.link(h1, routers[0], Bandwidth::mbps(100), SimDuration::from_micros(500), 16);
        b.link(
            h2,
            routers[rng.below_usize(n_routers)],
            Bandwidth::mbps(100),
            SimDuration::from_micros(500),
            16,
        );
        let topo = b.build();
        let n_links = topo.link_count();
        let mut sim = Simulator::new(topo, seed);
        for &r in &routers {
            sim.set_logic(r, Box::new(RouterLogic::new()));
        }
        sim.set_logic(h2, Box::new(SinkHost::new()));
        // Random impairment on a random link.
        let victim = LinkId(rng.below_usize(n_links));
        sim.set_fault(
            victim,
            Dir::AtoB,
            FaultConfig {
                drop_prob: drop_pct as f64 / 100.0,
                jitter_max: Some(SimDuration::from_millis(rng.below(10))),
            },
        );
        // Random traffic, mixed sizes, staggered in time.
        for i in 0..n_pkts {
            sim.run_until(SimTime::ZERO + SimDuration::from_micros(i as u64 * 200));
            let key = FlowKey::udp(
                Addr::new(10, 0, 0, 1),
                (1024 + rng.below(1000)) as u16,
                Addr::new(10, 0, 0, 2),
                80,
            );
            sim.inject(h1, Packet::udp(key, 10 + rng.below(1400) as u32));
        }
        sim.run_until(SimTime::from_secs(30));
        for l in 0..n_links {
            for dir in [Dir::AtoB, Dir::BtoA] {
                let s = sim.link_stats(LinkId(l), dir);
                prop_assert!(
                    conservation_holds(&s),
                    "link {l} {dir:?}: {s:?}"
                );
                // After a long quiescence the gap must be fully drained:
                // nothing is in flight, so the accounting is exact.
                let accounted =
                    s.delivered + s.dropped_queue + s.dropped_tap + s.dropped_fault;
                prop_assert_eq!(
                    s.offered, accounted,
                    "drained link must account exactly: link {} {:?} {:?}", l, dir, s
                );
            }
        }
        // Global: every injected packet was delivered to the sink or
        // dropped for a counted reason along the way.
        let c = sim.counters();
        let sink: &mut SinkHost = sim.logic_mut(h2);
        prop_assert_eq!(
            sink.total_packets + c.dropped_queue + c.dropped_fault + c.dropped_no_route,
            n_pkts as u64,
            "global conservation: {:?}", c
        );
    }
}
