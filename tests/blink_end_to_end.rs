//! Cross-crate integration: the §3.1 Blink case study at packet level —
//! the C4 claim of DESIGN.md. Legitimate TCP traffic, the spoofing
//! attacker, the Blink pipeline on a netsim router, and the §5 guard,
//! all together.

use dui::netsim::time::{SimDuration, SimTime};
use dui::scenario::{BlinkScenario, BlinkScenarioConfig};

fn base_cfg() -> BlinkScenarioConfig {
    BlinkScenarioConfig {
        legit_flows: 200,
        malicious_flows: 64,
        horizon: SimDuration::from_secs(100),
        seed: 11,
        ..Default::default()
    }
}

#[test]
fn real_failure_detected_and_rerouted() {
    let mut sc = BlinkScenario::build(&base_cfg());
    sc.sim.run_until(SimTime::from_secs(20));
    assert!(sc.on_primary().unwrap());
    sc.fail_primary_forward();
    sc.sim.run_until(SimTime::from_secs(28));
    assert!(
        !sc.on_primary().unwrap(),
        "Blink must reroute around a real failure within seconds"
    );
    assert_eq!(sc.reroutes().unwrap(), 1);
}

#[test]
fn attacker_flows_capture_cells_over_time() {
    let mut sc = BlinkScenario::build(&base_cfg());
    sc.sim.run_until(SimTime::from_secs(15));
    let early = sc.malicious_cells().unwrap();
    sc.sim.run_until(SimTime::from_secs(80));
    let late = sc.malicious_cells().unwrap();
    assert!(late > early, "occupancy must grow: {early} -> {late}");
    assert!(
        late >= 32,
        "64 spoofed flows should capture a majority: {late}"
    );
}

#[test]
fn fake_retransmission_burst_triggers_spurious_reroute() {
    let cfg = BlinkScenarioConfig {
        trigger_at: Some(SimTime::from_secs(70)),
        ..base_cfg()
    };
    let mut sc = BlinkScenario::build(&cfg);
    sc.sim.run_until(SimTime::from_secs(69));
    assert!(sc.on_primary().unwrap(), "no reroute before the trigger");
    assert!(sc.malicious_cells().unwrap() >= 32, "attack prerequisites met");
    sc.sim.run_until(SimTime::from_secs(73));
    assert!(
        sc.reroutes().unwrap() >= 1,
        "the burst must look like a failure to Blink"
    );
    // Before the 5 s hold-down admits a second event, traffic sits on the
    // backup (later triggers cycle the two-entry next-hop list).
    assert!(!sc.on_primary().unwrap(), "traffic steered off the healthy path");
}

#[test]
fn rto_guard_vetoes_fake_but_passes_real() {
    // Guarded, attacked.
    let cfg = BlinkScenarioConfig {
        trigger_at: Some(SimTime::from_secs(70)),
        guarded: true,
        ..base_cfg()
    };
    let mut sc = BlinkScenario::build(&cfg);
    sc.sim.run_until(SimTime::from_secs(80));
    assert!(sc.on_primary().unwrap(), "guarded Blink must not fall for the burst");
    assert!(sc.vetoed() > 0, "the guard must have actually vetoed");

    // Guarded, real failure.
    let cfg = BlinkScenarioConfig {
        guarded: true,
        malicious_flows: 1,
        ..base_cfg()
    };
    let mut sc = BlinkScenario::build(&cfg);
    sc.sim.run_until(SimTime::from_secs(20));
    sc.fail_primary_forward();
    sc.sim.run_until(SimTime::from_secs(30));
    assert!(
        !sc.on_primary().unwrap(),
        "the guard must not suppress genuine failure recovery"
    );
}

#[test]
fn scenario_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let cfg = BlinkScenarioConfig {
            legit_flows: 80,
            horizon: SimDuration::from_secs(40),
            seed,
            ..base_cfg()
        };
        let mut sc = BlinkScenario::build(&cfg);
        sc.sim.run_until(SimTime::from_secs(40));
        (sc.malicious_cells().unwrap(), sc.sim.counters().delivered)
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}
