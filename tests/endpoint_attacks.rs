//! Cross-crate integration: the §4 endpoint attacks that don't get their
//! own case-study section — "performance loss (e.g., manipulated window
//! size in TCP)" — exercised end to end over the simulator.

use dui::attacks::primitives::{flow_filter, WindowClamper};
use dui::attacks::BounceProgram;
use dui::netsim::node::RouterLogic;
use dui::netsim::prelude::*;
use dui::tcp::{FlowSpec, TcpHost, TcpSenderConfig};

fn key() -> FlowKey {
    FlowKey::tcp(Addr::new(10, 0, 0, 1), 1000, Addr::new(10, 0, 0, 2), 80)
}

fn line() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
    let mut b = TopologyBuilder::new();
    let h1 = b.host("h1", Addr::new(10, 0, 0, 1));
    let r1 = b.router("r1");
    let r2 = b.router("r2");
    let h2 = b.host("h2", Addr::new(10, 0, 0, 2));
    b.link(
        h1,
        r1,
        Bandwidth::mbps(100),
        SimDuration::from_millis(5),
        256,
    );
    b.link(
        r1,
        r2,
        Bandwidth::mbps(100),
        SimDuration::from_millis(10),
        256,
    );
    b.link(
        r2,
        h2,
        Bandwidth::mbps(100),
        SimDuration::from_millis(5),
        256,
    );
    (b.build(), h1, r1, r2, h2)
}

fn throughput_with(clamp: Option<u32>) -> f64 {
    let (topo, h1, r1, r2, h2) = line();
    let mut sim = Simulator::new(topo, 9);
    sim.set_logic(r1, Box::new(RouterLogic::new()));
    sim.set_logic(r2, Box::new(RouterLogic::new()));
    sim.set_logic(
        h1,
        Box::new(TcpHost::with_flows(vec![FlowSpec {
            key: key(),
            start: SimTime::ZERO,
            config: TcpSenderConfig {
                total_bytes: Some(20_000_000),
                ..Default::default()
            },
        }])),
    );
    sim.set_logic(h2, Box::new(TcpHost::new()));
    if let Some(w) = clamp {
        // ACKs flow h2 -> h1; clamp them on the middle link (MitM).
        sim.install_tap(
            LinkId(1),
            Dir::BtoA,
            Box::new(WindowClamper::new(flow_filter(key()), w)),
        );
    }
    sim.run_until(SimTime::from_secs(10));
    let src: &mut TcpHost = sim.logic_mut(h1);
    src.sender_stats(&key()).unwrap().bytes_acked as f64 / 10.0
}

#[test]
fn window_clamping_collapses_throughput_without_any_loss() {
    let honest = throughput_with(None);
    // 2 segments per 40 ms RTT ≈ 73 kB/s ceiling.
    let clamped = throughput_with(Some(2 * 1460));
    assert!(
        honest > 1_000_000.0,
        "honest flow should exceed 1 MB/s: {honest:.0}"
    );
    assert!(
        clamped < honest / 10.0,
        "window clamp must throttle ≥10x: {honest:.0} -> {clamped:.0} B/s"
    );
    // The sender behaves exactly as specified — "applications typically
    // trust the data that they receive from the network".
    let expected_ceiling = 2.0 * 1460.0 / 0.040 * 1.5; // generous margin
    assert!(
        clamped < expected_ceiling,
        "clamped rate {clamped:.0} bounded by window/RTT"
    );
}

#[test]
fn operator_bounce_inflates_tcp_latency_and_cuts_throughput() {
    // Same transfer, but the operator's data-plane program bounces the
    // flow's packets between r1 and r2 four extra legs — latency-based
    // throttling with zero loss signature (§4.1's operator attack).
    let run = |bounce: bool| {
        let (topo, h1, r1, r2, h2) = line();
        let mut sim = Simulator::new(topo, 9);
        if bounce {
            let matcher = |p: &Packet| p.key.dport == 80 || p.key.sport == 80;
            sim.set_logic(
                r1,
                Box::new(RouterLogic::new().with_program(Box::new(BounceProgram::new(
                    Box::new(matcher),
                    r2,
                    6,
                )))),
            );
            sim.set_logic(
                r2,
                Box::new(RouterLogic::new().with_program(Box::new(BounceProgram::new(
                    Box::new(matcher),
                    r1,
                    6,
                )))),
            );
        } else {
            sim.set_logic(r1, Box::new(RouterLogic::new()));
            sim.set_logic(r2, Box::new(RouterLogic::new()));
        }
        sim.set_logic(
            h1,
            Box::new(TcpHost::with_flows(vec![FlowSpec {
                key: key(),
                start: SimTime::ZERO,
                config: TcpSenderConfig {
                    total_bytes: Some(5_000_000),
                    ..Default::default()
                },
            }])),
        );
        sim.set_logic(h2, Box::new(TcpHost::new()));
        sim.run_until(SimTime::from_secs(10));
        let src: &mut TcpHost = sim.logic_mut(h1);
        src.sender_stats(&key()).unwrap().bytes_acked as f64
    };
    let honest = run(false);
    let bounced = run(true);
    assert!(
        bounced < honest * 0.7,
        "latency inflation must cut ACK-clocked throughput: {honest:.0} -> {bounced:.0}"
    );
}
