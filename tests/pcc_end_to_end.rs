//! Cross-crate integration: the §4.2 PCC case study at packet level —
//! convergence when clean, non-convergence + fluctuation under the
//! equalizer MitM, detection by the §5 loss-pattern monitor.

use dui::defense::pcc_guard::PccLossPatternMonitor;
use dui::netsim::time::SimTime;
use dui::pcc::endpoint::PccSender;
use dui::scenario::{PccScenario, PccScenarioConfig};

#[test]
fn clean_flow_converges_near_capacity() {
    let mut sc = PccScenario::build(&PccScenarioConfig {
        seed: 2,
        ..Default::default()
    });
    sc.sim.run_until(SimTime::from_secs(40));
    let trace = sc.rate_trace(0);
    let tail: Vec<f64> = trace
        .points()
        .iter()
        .filter(|(t, _)| *t > 30.0)
        .map(|&(_, v)| v)
        .collect();
    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
    let capacity = 6.25e6; // 50 Mbps in bytes/s
    assert!(
        (mean - capacity).abs() / capacity < 0.25,
        "mean {:.2} MB/s vs capacity 6.25 MB/s",
        mean / 1e6
    );
}

#[test]
fn equalizer_pins_flow_below_fair_share() {
    let pin = 25.0 * 125_000.0; // 25 Mbps
    let mut sc = PccScenario::build(&PccScenarioConfig {
        attacked: true,
        pin_to: Some(pin),
        seed: 2,
        ..Default::default()
    });
    sc.sim.run_until(SimTime::from_secs(120));
    let trace = sc.rate_trace(0);
    let tail: Vec<f64> = trace
        .points()
        .iter()
        .filter(|(t, _)| *t > 40.0)
        .map(|&(_, v)| v)
        .collect();
    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
    let capacity = 6.25e6;
    assert!(
        mean < 0.85 * capacity,
        "attacked flow must be held below fair share: {:.2} MB/s",
        mean / 1e6
    );
}

#[test]
fn attacked_flow_suffers_inconclusive_decisions() {
    let mut sc = PccScenario::build(&PccScenarioConfig {
        attacked: true,
        pin_to: Some(25.0 * 125_000.0),
        seed: 3,
        ..Default::default()
    });
    sc.sim.run_until(SimTime::from_secs(60));
    let node = sc.senders[0];
    let s: &mut PccSender = sc.sim.logic_mut(node);
    let inconclusive = s
        .decisions()
        .iter()
        .filter(|d| matches!(d, dui::pcc::control::Decision::Inconclusive(_)))
        .count();
    assert!(
        inconclusive >= 3,
        "equalized trials should produce inconclusive decisions: {inconclusive} of {}",
        s.decisions().len()
    );
}

#[test]
fn loss_pattern_monitor_flags_the_attack_not_the_clean_path() {
    // The §5 monitor is aimed at the paper's mirror equalizer, whose loss
    // lands only in +ε phases (pin_to: None).
    let risk_of = |attacked: bool| {
        let mut sc = PccScenario::build(&PccScenarioConfig {
            attacked,
            seed: 4,
            ..Default::default()
        });
        sc.sim.run_until(SimTime::from_secs(60));
        let node = sc.senders[0];
        let s: &mut PccSender = sc.sim.logic_mut(node);
        let meta: std::collections::HashMap<u64, f64> =
            s.mi_meta.iter().map(|&(id, _, base)| (id, base)).collect();
        let mut mon = PccLossPatternMonitor::new();
        for r in s.mi_history() {
            if let Some(&base) = meta.get(&r.id) {
                mon.observe(r, base);
            }
        }
        mon.risk().0
    };
    let clean = risk_of(false);
    let attacked = risk_of(true);
    // The victim rides the bottleneck either way, so genuine queue losses
    // dilute the directional signal; the attack still separates cleanly
    // from the (lossless-at-capacity) clean run.
    assert!(
        attacked > clean + 0.12,
        "monitor must separate attack ({attacked:.2}) from clean ({clean:.2})"
    );
    assert!(clean < 0.05, "clean path must not be accused: {clean:.2}");
}

#[test]
fn aggregate_destination_fluctuation_grows_with_attack() {
    // 8 PCC flows to one destination; the coherent sway attack slowly
    // herds all flows up and down together, making the aggregate arrival
    // rate fluctuate (§4.2's destination-impact claim). The sway period
    // must exceed the drag time constant (~10 s) for flows to track it.
    let cv_of = |attacked: bool| {
        let mut sc = PccScenario::build(&PccScenarioConfig {
            flows: 8,
            attacked,
            pin_to: attacked.then_some(3.0 * 125_000.0),
            sway: attacked.then_some((0.5, dui::netsim::time::SimDuration::from_secs(50))),
            seed: 5,
            ..Default::default()
        });
        sc.sim.run_until(SimTime::from_secs(180));
        sc.destination_cv(SimTime::from_secs(180), 60.0)
    };
    let clean = cv_of(false);
    let attacked = cv_of(true);
    assert!(
        attacked > 2.0 * clean,
        "attack must amplify destination fluctuation: clean CV {clean:.3}, attacked CV {attacked:.3}"
    );
}
