//! Golden-trace fixtures: the checkpoint hash sequences of the small
//! recordable stages, pinned as text files under `tests/golden/`.
//!
//! This is the cross-crate determinism gate: the subject builders live
//! in `dui-bench`, the recorder and state hashing in `dui-replay`, and
//! the simulations in `dui-blink` / `dui-netsim` — a re-run through the
//! whole stack must reproduce every pinned state hash bit-for-bit, on
//! any machine. A diff here means simulation behavior changed: either a
//! regression, or an intentional change that must be re-blessed with
//!
//! ```sh
//! GOLDEN_BLESS=1 cargo test --test golden_traces
//! ```

use dui_bench::recordings::build_subject;
use dui_replay::{Recorder, Recording};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Stage → (fixture file, checkpoint cadence).
const GOLDEN: &[(&str, &str, u64)] = &[
    ("fig2-small", "fig2.hashes", 4_000),
    ("blink-packet-small", "blink_packet.hashes", 20_000),
    ("pcc-small", "pcc.hashes", 50_000),
];

fn fixture_path(file: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(file)
}

/// Record `stage` and render its trace: one header line binding the
/// configuration, one line per checkpoint, one final-hash line.
fn record_trace(stage: &str, every: u64) -> String {
    let mut subject = build_subject(stage).expect("recordable stage");
    let s = subject.as_subject_mut();
    let rec: Recording = Recorder::new(stage, s.config_digest(), every).record(s);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {stage} ckpt_every={every} config={:016x} events={}",
        rec.config_digest,
        rec.events.len()
    );
    for c in &rec.checkpoints {
        let _ = writeln!(out, "{} {} {:016x}", c.event_index, c.time, c.state_hash);
    }
    let _ = writeln!(out, "final {:016x}", rec.final_hash);
    out
}

fn check(stage: &str, file: &str, every: u64) {
    let got = record_trace(stage, every);
    let path = fixture_path(file);
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, &got).expect("write golden fixture");
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e});\n\
             bless with: GOLDEN_BLESS=1 cargo test --test golden_traces",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "golden trace for '{stage}' diverged — simulation behavior changed.\n\
         If intentional, re-bless with: GOLDEN_BLESS=1 cargo test --test golden_traces"
    );
}

#[test]
fn fig2_golden_trace() {
    let (stage, file, every) = GOLDEN[0];
    check(stage, file, every);
}

#[test]
fn blink_packet_golden_trace() {
    let (stage, file, every) = GOLDEN[1];
    check(stage, file, every);
}

#[test]
fn pcc_golden_trace() {
    let (stage, file, every) = GOLDEN[2];
    check(stage, file, every);
}
