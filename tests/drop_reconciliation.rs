//! Drop-accounting reconciliation over the telemetry registry: every
//! packet the engine ever creates must end in exactly one terminal
//! account — endpoint delivery, logic-less sink, router-local
//! consumption, or one of the drop categories. The test runs the
//! packet-level Blink scenario (attack included), then swaps every host
//! to a pure sink and drains, so nothing is left in flight when the
//! books are balanced.

use dui_core::netsim::node::SinkHost;
use dui_core::netsim::time::{SimDuration, SimTime};
use dui_core::scenario::{BlinkScenario, BlinkScenarioConfig};

#[test]
fn packets_created_equals_terminal_accounts() {
    let cfg = BlinkScenarioConfig {
        legit_flows: 60,
        malicious_flows: 16,
        trigger_at: Some(SimTime::from_secs(20)),
        horizon: SimDuration::from_secs(30),
        seed: 11,
        ..Default::default()
    };
    let mut sc = BlinkScenario::build(&cfg);
    sc.sim.run_until(SimTime::from_secs(25));

    // Stop all traffic generation and feedback: every host becomes a
    // sink, then the network drains for 10 simulated seconds.
    for host in [sc.legit, sc.attacker, sc.victim] {
        sc.sim.set_logic(host, Box::new(SinkHost::new()));
    }
    sc.sim.run_until(SimTime::from_secs(35));

    let snap = sc.sim.metrics_snapshot();
    let created = snap.counter("netsim.packets.created");
    let endpoint = snap.counter("netsim.delivered.endpoint");
    let sunk = snap.counter("netsim.sunk");
    let consumed = snap.counter("netsim.consumed.router");
    let drops: u64 = [
        "netsim.drop.queue",
        "netsim.drop.tap",
        "netsim.drop.fault",
        "netsim.drop.ttl",
        "netsim.drop.program",
        "netsim.drop.no_route",
    ]
    .iter()
    .map(|name| snap.counter(name))
    .sum();

    assert!(created > 10_000, "attack scenario must move traffic: {created}");
    assert!(endpoint > 0, "hosts must have consumed packets");
    assert_eq!(
        created,
        endpoint + sunk + consumed + drops,
        "injected packets must reconcile with terminal accounts \
         (endpoint {endpoint} + sunk {sunk} + router {consumed} + drops {drops})"
    );

    // The legacy by-value Counters view is a projection of the same
    // registry: its drop total must agree with the snapshot's.
    let c = sc.sim.counters();
    assert_eq!(c.total_drops(), drops);
    assert_eq!(c.sunk, sunk);

    // The per-link queue-depth histogram recorded real enqueues.
    let depth = snap.hist("netsim.link.queue_depth").expect("depth hist");
    assert!(depth.count() > 0);
}
