//! Cross-crate integration: the §2 threat model ties the case studies
//! together — every implemented attack is catalogued with its privilege
//! and target, and privilege checks are enforced at the scenario level.

use dui::attacks::pytheas_poison::{BotnetPoisoning, CdnThrottleAttack};
use dui::pytheas::engine::{EngineConfig, PoisonStrategy};
use dui::threat::{catalogue, Capability, Privilege, Target};

#[test]
fn catalogue_matches_paper_case_studies() {
    let cat = catalogue();
    let by_name = |n: &str| cat.iter().find(|a| a.name == n).expect(n);

    let blink = by_name("blink-takeover");
    assert_eq!(blink.privilege, Privilege::Host);
    assert_eq!(blink.target, Target::Infrastructure);
    assert_eq!(blink.section, "§3.1");

    let pytheas = by_name("pytheas-botnet-poison");
    assert_eq!(pytheas.privilege, Privilege::Host);
    assert_eq!(pytheas.target, Target::Endpoints);

    let pcc = by_name("pcc-oscillate");
    assert_eq!(pcc.privilege, Privilege::Mitm);

    let tr = by_name("traceroute-spoof");
    assert_eq!(tr.privilege, Privilege::Mitm);
}

#[test]
fn host_level_attacker_cannot_run_mitm_attacks() {
    let throttle = CdnThrottleAttack {
        arm: 0,
        factor: 0.5,
        reach: 1.0,
    };
    let mut cfg = EngineConfig::default();
    let err = throttle.apply(&mut cfg, Privilege::Host).unwrap_err();
    assert!(err.contains("man-in-the-middle"), "{err}");
    assert!(cfg.throttle.is_none(), "config untouched on refusal");
}

#[test]
fn operator_can_run_everything() {
    for a in catalogue() {
        assert!(a.check_privilege(Privilege::Operator).is_ok(), "{}", a.name);
    }
}

#[test]
fn capability_matrix_is_monotone_in_privilege() {
    for cap in [
        Capability::RecordOnPath,
        Capability::ModifyOnPath,
        Capability::InjectFromHost,
        Capability::InjectAnywhere,
        Capability::Reconfigure,
    ] {
        let mut allowed_before = false;
        for p in Privilege::all() {
            let allowed = p.grants(cap);
            assert!(
                allowed || !allowed_before,
                "capability {cap:?} must not be lost as privilege grows"
            );
            allowed_before = allowed;
        }
    }
}

#[test]
fn botnet_poisoning_composes_with_engine_config() {
    let atk = BotnetPoisoning {
        fraction: 0.15,
        strategy: PoisonStrategy::DragDownArm(1),
    };
    let mut cfg = EngineConfig::default();
    atk.apply(&mut cfg, Privilege::Mitm).unwrap(); // higher privilege ok
    assert_eq!(cfg.poison_fraction, 0.15);
    assert_eq!(cfg.poison, PoisonStrategy::DragDownArm(1));
}
