//! Cross-crate integration: the Pytheas backend analyzing real engine
//! history — distinguishing feature-aligned damage (split the group) from
//! feature-invisible poisoning (filter the reports).

use dui::pytheas::backend::{critical_feature, BackendConfig, Feature};
use dui::pytheas::engine::{
    make_groups, AcceptAll, EngineConfig, PoisonStrategy, PytheasEngine, Throttle,
};
use dui::pytheas::qoe::QoeModel;

fn model() -> QoeModel {
    QoeModel::new(vec![0.4, 0.85, 0.7], 0.05)
}

#[test]
fn throttle_on_one_group_is_feature_aligned_and_detected() {
    // Two groups at different locations; the MitM throttle reaches only
    // sessions of one (modelled by running the throttled engine for one
    // group and merging histories — the backend sees the union).
    let clean_cfg = EngineConfig::default();
    let throttled_cfg = EngineConfig {
        throttle: Some(Throttle {
            arm: 1,
            factor: 0.25,
            affected_fraction: 1.0,
        }),
        ..Default::default()
    };
    let groups = make_groups(2);
    let mut clean = PytheasEngine::new(model(), clean_cfg, &groups[..1], 5);
    let mut throttled = PytheasEngine::new(model(), throttled_cfg, &groups[1..], 6);
    for _ in 0..150 {
        clean.run_round(&mut AcceptAll);
        throttled.run_round(&mut AcceptAll);
    }
    let mut records = clean.records.clone();
    records.extend(throttled.records.iter().copied());
    let cf = critical_feature(&records, &BackendConfig::default())
        .expect("feature-aligned damage must be detected");
    // The two groups differ in asn/prefix/location; any of those splits
    // quarantines the attacked population (content would not).
    assert_ne!(cf.feature, Feature::Content, "damage aligns with group identity");
    assert!(cf.gap > 0.3, "gap = {}", cf.gap);
    assert_eq!(cf.arm, 1, "the throttled arm exhibits the gap");
}

#[test]
fn botnet_poisoning_is_not_feature_aligned() {
    // Bots are spread uniformly through the group: the backend must NOT
    // find a split (the §5 outlier filter is the right tool instead).
    let cfg = EngineConfig {
        poison_fraction: 0.2,
        poison: PoisonStrategy::DragDownArm(1),
        ..Default::default()
    };
    let mut e = PytheasEngine::new(model(), cfg, &make_groups(1), 7);
    for _ in 0..150 {
        e.run_round(&mut AcceptAll);
    }
    assert!(
        critical_feature(&e.records, &BackendConfig::default()).is_none(),
        "uniform poisoning offers no clean split"
    );
}
