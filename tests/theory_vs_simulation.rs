//! Cross-crate integration: the paper's Fig. 2 at full scale — the
//! analytical models against the flow-level Monte-Carlo, plus property
//! tests over the model family.

use dui::blink::fastsim::{AttackSim, AttackSimConfig};
use dui::blink::theory::{effective_qm, AttackModel, FixedKeysModel};
use dui::stats::series::envelope;

#[test]
fn fig2_fifty_runs_inside_fixed_keys_band() {
    // The paper overlays 50 simulations on calculated percentile bands; we
    // do the same at a reduced horizon and require the cross-run envelope
    // to hug the fixed-keys model's Monte-Carlo quantiles.
    let cfg = AttackSimConfig {
        horizon: dui::netsim::time::SimDuration::from_secs(120),
        ..AttackSimConfig::fig2()
    };
    let runs = AttackSim::run_many(&cfg, 100, 12);
    let series: Vec<_> = runs.iter().map(|r| r.series.clone()).collect();
    let env = envelope(&series, 5.0, 95.0);
    let t_r: f64 = runs.iter().filter_map(|r| r.achieved_t_r).sum::<f64>() / runs.len() as f64;
    let model = FixedKeysModel {
        t_r,
        ..FixedKeysModel::fig2()
    };
    for (i, &t) in env.times.iter().enumerate() {
        if t < 20.0 || !(t as u64).is_multiple_of(20) {
            continue;
        }
        let mean = model.mean(t);
        assert!(
            (env.mean[i] - mean).abs() < 7.0,
            "t={t}: envelope mean {} vs model {mean:.1} (tR={t_r:.2})",
            env.mean[i]
        );
    }
}

#[test]
fn paper_numbers_summary() {
    // The quantitative §3.1 claims in one place.
    let iid = AttackModel::fig2();
    // Printed formula: p = 1-(1-qm)^(t/tR).
    assert!((iid.cell_probability(8.37) - 0.0525).abs() < 1e-10);
    // Mean crossing of the printed formula.
    let t_iid = iid.mean_takeover_time().unwrap();
    assert!((t_iid - 107.6).abs() < 1.0);
    // Fixed-keys refinement lands near the paper's quoted 172 s.
    let fixed = FixedKeysModel::fig2();
    let t_fixed = fixed.mean_takeover_time().unwrap();
    assert!((140.0..185.0).contains(&t_fixed), "{t_fixed}");
    // Takeover is near-certain within the reset budget.
    assert!(iid.takeover_probability(510.0) > 0.99);
    // Rate asymmetry reconciliation.
    let adj = AttackModel {
        q_m: effective_qm(0.0525, 0.63),
        ..iid
    };
    assert!((adj.mean_takeover_time().unwrap() - 172.0).abs() < 8.0);
}

#[test]
fn qm_feasibility_frontier_monotone_in_t_r() {
    // "With longer tR, the attack is harder, i.e., requires higher qm."
    let mut last = 0.0;
    for t_r in [2.0, 5.0, 10.0, 20.0, 40.0] {
        let m = AttackModel {
            t_r,
            ..AttackModel::fig2()
        };
        let qmin = m.min_feasible_qm();
        assert!(qmin > last, "tR={t_r}: qmin={qmin}");
        last = qmin;
    }
}

#[test]
fn simulated_takeover_time_shrinks_with_more_malicious_flows() {
    let run = |m: usize| {
        let cfg = AttackSimConfig {
            malicious_flows: m,
            horizon: dui::netsim::time::SimDuration::from_secs(300),
            ..AttackSimConfig::fig2()
        };
        AttackSim::run(&cfg, 9).takeover_time
    };
    let few = run(80);
    let many = run(200);
    match (few, many) {
        (Some(f), Some(m)) => assert!(m < f, "{m} !< {f}"),
        (None, Some(_)) => {} // few never took over: consistent
        other => panic!("unexpected: {other:?}"),
    }
}
